"""E10c — execution backends: generated mega-kernels vs fused closures.

The pluggable backend subsystem (``repro.backends``) makes engine choice a
benchmark dimension.  This experiment pins the headline claim for the
``vector`` backend — each maximal straight-line block compiled to one
generated Python function with interval-bound guard elision:

* **>= 3x requests/sec over the fused baseline at batch 64** on at least
  two vector-heavy workloads.  The regime is long straight-line chains of
  cheap elementwise ops on small requests, where per-instruction dispatch
  and guard reductions dominate the fused executor — exactly what the
  generated code eliminates;
* **bit-identical semantics**: every backend must produce the same output
  registers and the same deterministic ``T'``/``W'`` counters, which also
  feed the perf-regression gate.

Timing is machine-only (the batched twin runs on pre-encoded inputs):
request marshalling is identical across backends and would otherwise
drown the engine difference on these microsecond-scale programs.  Repeats
are interleaved across backends so frequency drift cancels instead of
biasing whichever side ran last.
"""

import time

import common

from repro.analysis import format_table
from repro.bvram import BVRAM
from repro.compiler import compile_nsc
from repro.compiler.batch import batched_program
from repro.nsc import builder as B
from repro.nsc import from_python
from repro.nsc.types import NAT

BACKENDS = ("fused", "vector", "vector-jit")
BATCH = 64
REPEAT = 11


def _chain(rounds, round_body):
    """``rounds`` small per-round lambdas composed linearly.

    Composing via ``B.compose`` keeps the term linear in ``rounds``;
    nesting the expressions directly would duplicate the round input
    four times per level and blow up exponentially.
    """
    fn = None
    for k in range(rounds):
        x = B.gensym(f"x{k}")
        lam = B.lam(x, NAT, round_body(x, k))
        fn = lam if fn is None else B.compose(lam, fn)
    return B.map_(fn)


def _mix(rounds=96):
    # min/max/monus/shift/add mix: every op takes the generated fast path
    return _chain(
        rounds,
        lambda x, k: B.nat_max(
            B.nat_min(
                B.add(B.v(x), 2 * k + 3),
                B.add(B.rshift(B.v(x), 1), 331),
            ),
            B.sub(B.v(x), k + 1),
        ),
    )


def _smooth(rounds=64):
    # shift-add smoothing with a doubling monus: a different op mix that
    # still stays on single-ufunc fast paths (bounds keep products small)
    return _chain(
        rounds,
        lambda x, k: B.nat_min(
            B.add(B.add(B.v(x), B.rshift(B.v(x), 2)), k + 1),
            B.sub(B.mul(B.v(x), 2), B.rshift(B.v(x), 1)),
        ),
    )


def _workloads():
    r = common.rng(6)
    reqs = [[r.randrange(997) for _ in range(4)] for _ in range(BATCH)]
    return [("mix96", _mix(), reqs), ("smooth64", _smooth(), reqs)]


def test_e10_backend_throughput(benchmark):
    rows = []
    speedups = {}
    for name, fn, requests in _workloads():
        prog = compile_nsc(fn)
        twin = batched_program(prog)
        enc = twin.encode_batch_input([from_python(v) for v in requests])
        machines = {be: BVRAM(twin.n_registers) for be in BACKENDS}
        outcomes = {
            be: m.run(twin, enc, record_trace=False, backend=be)
            for be, m in machines.items()
        }
        ref = outcomes["fused"]
        for be, res in outcomes.items():
            assert (res.time, res.work) == (ref.time, ref.work), (
                f"{name}/{be}: T'/W' diverge from fused"
            )
            assert all(
                (a == b).all() for a, b in zip(res.registers, ref.registers)
            ), f"{name}/{be}: output registers diverge from fused"
        best = {be: float("inf") for be in BACKENDS}
        for _ in range(REPEAT):
            for be, m in machines.items():
                t0 = time.perf_counter()
                m.run(twin, enc, record_trace=False, backend=be)
                best[be] = min(best[be], time.perf_counter() - t0)
        for be in BACKENDS:
            common.record(
                f"e10/backends/{name}/{be}/batch{BATCH}",
                backend=be,
                wall_s=best[be],
                requests_per_s=round(BATCH / best[be]),
                time=outcomes[be].time,
                work=outcomes[be].work,
                opt_level=prog.opt_level,
            )
            rows.append(
                [name, be, f"{BATCH / best[be]:,.0f}",
                 f"{best['fused'] / best[be]:.2f}x"]
            )
        speedups[name] = best["fused"] / best["vector"]
    print("\nE10c backend throughput at batch 64 (machine-only, encoded twin)")
    print(format_table(["workload", "backend", "req/s", "vs fused"], rows))
    fast = [n for n, s in speedups.items() if s >= 3.0]
    assert len(fast) >= 2, (
        f"expected >=3x requests/sec for the vector backend at batch {BATCH} "
        f"on >=2 workloads, got {speedups}"
    )
    name, fn, requests = _workloads()[0]
    prog = compile_nsc(fn, backend="vector")
    twin = batched_program(prog)
    enc = twin.encode_batch_input([from_python(v) for v in requests])
    machine = BVRAM(twin.n_registers)
    machine.run(twin, enc, record_trace=False)
    benchmark(lambda: machine.run(twin, enc, record_trace=False, backend="vector"))
