#!/usr/bin/env python
"""Run every ``bench_e*.py`` experiment and emit ``BENCH_PR10.json``.

This is the perf-regression harness the CI job runs:

1. each experiment file is executed through pytest (``--benchmark-disable``,
   so claims are asserted once without timing loops) with ``BENCH_JSON``
   pointing at a scratch file — the experiments' :func:`common.record` calls
   land there as JSON lines;
2. the per-experiment wall-clock and records are aggregated into one
   machine-readable JSON document (default: ``BENCH_PR10.json`` at the repo
   root), suitable for uploading as a workflow artifact and for committing
   as the next baseline;
3. with ``--check``, the document is compared against the committed baseline
   (default: ``benchmarks/bench_baseline.json``): the job **fails** when an
   experiment's wall-clock, or any deterministic ``time``/``work`` counter
   in a matching record, regresses by more than ``--factor`` (default 2x);
4. with ``--update-baseline``, the fresh document is also written to the
   baseline path — refreshing ``benchmarks/bench_baseline.json`` after an
   intentional perf change is one command instead of hand-edited JSON.

The ``time``/``work`` counters are exact machine/Definition 3.1 costs and
compare directly.  Wall-clock compares as each experiment's **share of the
run's total wall time**, not absolute seconds — a uniformly slower CI
runner leaves every share unchanged (no false alarms against a baseline
recorded on other hardware), while a single experiment slowing down >2x
relative to its siblings inflates its share and fails the gate.

``--only`` restricts the run to a comma-separated list of experiments
(``--only e9,e10``, matching the ``eN`` prefix of each bench file) — for
iterating on one experiment without paying for the whole sweep.  The
regression gate is subset-aware: baseline experiments outside the
selection are skipped, and the wall-clock shares are renormalised over
the selected subset on *both* sides so partial runs compare like with
like.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py            # write BENCH_PR10.json
    PYTHONPATH=src python benchmarks/run_all.py --check    # + regression gate
    PYTHONPATH=src python benchmarks/run_all.py --only e9,e10  # subset run
    PYTHONPATH=src python benchmarks/run_all.py --update-baseline  # refresh baseline
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import platform
import subprocess
import sys
import tempfile
import time

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)


def run_experiment(path: str) -> tuple[float, list[dict], int]:
    """Run one bench file under pytest; returns (wall_s, records, returncode)."""
    fd, records_path = tempfile.mkstemp(suffix=".jsonl")
    os.close(fd)
    env = dict(os.environ)
    env["BENCH_JSON"] = records_path
    env["PYTHONHASHSEED"] = "0"
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", path, "-q", "--benchmark-disable"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    wall = time.perf_counter() - t0
    records: list[dict] = []
    try:
        with open(records_path, encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh if line.strip()]
    finally:
        os.unlink(records_path)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout[-4000:] + proc.stderr[-2000:])
    return wall, records, proc.returncode


def collect(out_path: str, only: set[str] | None = None) -> dict:
    experiments: dict[str, dict] = {}
    failed = []
    for path in sorted(glob.glob(os.path.join(BENCH_DIR, "bench_e*.py"))):
        name = os.path.basename(path).split("_")[1]  # bench_e9_compiled.py -> e9
        if only is not None and name not in only:
            continue
        print(f"[run_all] {os.path.basename(path)} ...", flush=True)
        wall, records, rc = run_experiment(path)
        if name in experiments:  # several files per experiment (e10): merge
            exp = experiments[name]
            exp["wall_s"] = round(exp["wall_s"] + wall, 3)
            exp["records"].extend(records)
        else:
            experiments[name] = {"wall_s": round(wall, 3), "records": records}
        print(f"[run_all]   {wall:.1f}s, {len(records)} records, rc={rc}", flush=True)
        if rc != 0:
            failed.append(name)
    payload = {
        "schema": 1,
        "opt_level": 2,  # compile_nsc's default, used by every compiled record
        "python": platform.python_version(),
        "experiments": experiments,
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[run_all] wrote {out_path}")
    if failed:
        raise SystemExit(f"experiments failed: {', '.join(failed)}")
    return payload


def check(
    payload: dict, baseline_path: str, factor: float, only: set[str] | None = None
) -> int:
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    regressions = []
    base_exps = baseline.get("experiments", {})
    if only is not None:  # subset run: compare (and renormalise) within it
        base_exps = {n: e for n, e in base_exps.items() if n in only}
    base_total = sum(e["wall_s"] for e in base_exps.values())
    new_total = sum(e["wall_s"] for e in payload["experiments"].values())
    for name, base_exp in base_exps.items():
        new_exp = payload["experiments"].get(name)
        if new_exp is None:
            regressions.append(f"{name}: experiment disappeared")
            continue
        # normalized wall share: machine-speed-invariant (see module docstring)
        base_share = base_exp["wall_s"] / base_total if base_total else 0.0
        new_share = new_exp["wall_s"] / new_total if new_total else 0.0
        if base_share and new_share > factor * base_share:
            regressions.append(
                f"{name}: wall share {100 * new_share:.1f}% "
                f"({new_exp['wall_s']:.2f}s) > {factor}x baseline share "
                f"{100 * base_share:.1f}% ({base_exp['wall_s']:.2f}s)"
            )
        base_recs = {r["name"]: r for r in base_exp.get("records", [])}
        new_recs = {r["name"]: r for r in new_exp.get("records", [])}
        for rec_name, base_rec in base_recs.items():
            new_rec = new_recs.get(rec_name)
            if new_rec is None:
                regressions.append(f"{name}: record {rec_name!r} disappeared")
                continue
            for metric in ("time", "work"):
                b, n = base_rec.get(metric), new_rec.get(metric)
                if b and n and n > factor * b:
                    regressions.append(
                        f"{name}/{rec_name}: {metric} {n} > {factor}x baseline {b}"
                    )
    if regressions:
        print("[run_all] PERF REGRESSIONS DETECTED:")
        for r in regressions:
            print(f"  - {r}")
        return 1
    print(f"[run_all] no regressions vs {baseline_path} (factor {factor}x)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--out", default=os.path.join(REPO_ROOT, "BENCH_PR10.json"))
    ap.add_argument(
        "--baseline", default=os.path.join(BENCH_DIR, "bench_baseline.json")
    )
    ap.add_argument("--check", action="store_true", help="enable the regression gate")
    ap.add_argument("--factor", type=float, default=2.0)
    ap.add_argument(
        "--only",
        default=None,
        metavar="e9,e10",
        help="run only these comma-separated experiments (subset-aware --check)",
    )
    ap.add_argument(
        "--update-baseline",
        action="store_true",
        help="also write the fresh results to --baseline (one-command refresh)",
    )
    args = ap.parse_args()
    only = (
        {n.strip() for n in args.only.split(",") if n.strip()}
        if args.only
        else None
    )
    if only and args.update_baseline:
        ap.error("--update-baseline needs a full run (drop --only)")
    payload = collect(args.out, only=only)
    rc = 0
    if args.check:
        rc = check(payload, args.baseline, args.factor, only=only)
    if args.update_baseline:
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[run_all] baseline updated: {args.baseline}")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
