"""E4 — Section 5 / Figures 1-3: Valiant's O(log n log log n) mergesort in NSC.

Claims: merge runs in O(log log m) parallel time, mergesort in
O(log n log log n); index/indexsplit are constant-time, linear-work.
"""

import math

import common

from repro.algorithms.mergesort import index_fn, run_index, run_merge, run_mergesort
from repro.analysis import format_table, loglog_slope
from repro.nsc import apply_function, from_python
from repro.nsc.types import NAT


def test_e4_mergesort_time_shape(benchmark):
    r = common.rng(0)
    sizes = [8, 16, 32, 64, 128, 256]
    rows = []
    for n in sizes:
        xs = r.sample(range(10 * n), n)
        out = run_mergesort(xs)
        model = math.log2(n) * max(1.0, math.log2(max(2, math.log2(n))))
        rows.append([n, out.time, round(out.time / model, 1), out.work])
    print("\nE4  Valiant mergesort in NSC (Figure 1)")
    print(format_table(["n", "T", "T / (log n loglog n)", "W"], rows))
    # time grows strongly sublinearly (the measured exponent mixes the
    # log n * loglog n product with per-level constants at these sizes)
    assert loglog_slope(sizes, [r[1] for r in rows]).slope < 0.75
    # the normalised column stays within a small band (constant factor)
    norm = [r[2] for r in rows]
    assert max(norm) <= 3 * min(norm)
    common.record("e4/mergesort_256", time=rows[-1][1], work=rows[-1][3])
    sample = r.sample(range(1000), 32)
    benchmark(lambda: run_mergesort(sample))


def test_e4_merge_time_loglog(benchmark):
    r = common.rng(1)
    sizes = [16, 64, 256, 1024]
    rows = []
    for n in sizes:
        a = sorted(r.sample(range(100000), n))
        b = sorted(r.sample(range(100000), n))
        out = run_merge(a, b)
        rows.append([n, out.time, out.work])
    print("\nE4b Valiant merge (Figure 1): T = O(log log m)")
    print(format_table(["m = n", "T", "W"], rows))
    times = [row[1] for row in rows]
    # 64x more data, barely more parallel time
    assert times[-1] <= 2.5 * times[0]
    common.record("e4/merge_1024", time=rows[-1][1], work=rows[-1][2])
    benchmark(lambda: run_merge(list(range(0, 64, 2)), list(range(1, 64, 2))))


def test_e4_index_constant_time_linear_work(benchmark):
    sizes = [16, 64, 256, 1024]
    rows = []
    for n in sizes:
        out = apply_function(index_fn(NAT), from_python((list(range(n)), [0, n // 2, n - 1])))
        rows.append([n, out.time, out.work])
    print("\nE4c index (Figure 3): constant T, O(n + k) W")
    print(format_table(["n", "T", "W"], rows))
    assert len({r[1] for r in rows}) == 1                     # constant parallel time
    assert 0.8 <= loglog_slope(sizes, [r[2] for r in rows]).slope <= 1.2  # linear work
    benchmark(lambda: run_index(list(range(128)), [0, 64, 127]))
