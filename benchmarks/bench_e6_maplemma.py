"""E6 — Lemma 7.2 (the Map Lemma), while case: flattening map(while(p,g)).

Claims: with a *bounded* register file the staged scheme pays only an
O(n^eps * W) overhead over the unbounded-register (Remark 7.3) baseline,
while the naive single-accumulator scheme pays up to O(t_max * W); the number
of registers used by the staged scheme does not depend on eps.
"""

import common
import numpy as np

from repro.analysis import format_table
from repro.sa import seq_while_simple, seq_while_staged, seq_while_unbounded


def _workload(n):
    vals = np.arange(1, n + 1)          # element i iterates i times (skewed)
    sizes = np.full(n, 32)              # finished elements carry chunky payloads
    pred = lambda v: v > 1
    step = lambda v: v - 1
    return vals, sizes, pred, step


def test_e6_while_flattening_overheads(benchmark):
    rows = []
    for n in (64, 128, 256, 512):
        vals, sizes, pred, step = _workload(n)
        base = seq_while_unbounded(vals, pred, step, sizes).cost
        simple = seq_while_simple(vals, pred, step, sizes).cost
        row = [n, base.work, round(simple.work / base.work, 2)]
        regs = set()
        for eps in (1.0, 0.5, 0.25):
            r = seq_while_staged(vals, pred, step, eps, sizes)
            row.append(round(r.cost.work / base.work, 2))
            regs.add(r.cost.max_registers)
        row.append(sorted(regs))
        rows.append(row)
    print("\nE6  SEQ(while): work overhead factor vs the unbounded-register baseline")
    print(format_table(
        ["n", "W unbounded", "naive x", "staged eps=1", "staged eps=0.5", "staged eps=0.25", "staged registers"],
        rows,
    ))
    for row in rows:
        n, _, naive, s1, s05, s025, regs = row
        assert s05 < naive            # the Lemma 7.2 scheme beats the naive one
        assert regs == [3]            # register count independent of eps
    # the staged eps=0.5 overhead stays well below the naive overhead (the
    # O(n^eps * W) vs O(t_max * W) separation of Lemma 7.2)
    naive_factors = [r[2] for r in rows]
    staged_factors = [r[4] for r in rows]
    assert staged_factors[-1] < naive_factors[-1] / 2
    assert all(s < n_ for s, n_ in zip(staged_factors, naive_factors))
    common.record(
        "e6/staged_512",
        naive_factor=naive_factors[-1],
        staged_factor=staged_factors[-1],
    )
    vals, sizes, pred, step = _workload(128)
    benchmark(lambda: seq_while_staged(vals, pred, step, 0.5, sizes))
