"""E11 — async serving: adaptive micro-batching and multi-core sharding.

Two layers above E10's raw ``run_batch`` measurement:

* **the scheduler earns its keep** — under a simulated open-loop load (all
  requests arrive as a burst, independent of completions, the arrival
  pattern a traffic spike produces), the adaptive micro-batching server
  (``max_batch=64``) must beat *per-request dispatch* — the same asyncio
  front door with ``max_batch=1``, so both sides pay identical event-loop
  and future overhead and the difference is purely batch formation — by
  **>= 5x requests/sec on >= 2 workloads**, with every response exactly
  equal to a solo ``run()``;
* **sharding scales with cores** — at batch 512 the
  :class:`~repro.serving.ShardExecutor` path (one batched machine per
  worker process) is compared against the single-process ``run_batch``.
  On a **>= 4-core** runner it must win by **>= 1.8x** on the best
  workload; below 4 cores the numbers are recorded (IPC overhead with no
  parallelism to pay for it) but the bar is not asserted — the Brent bound
  needs a p to divide by.

Latency percentiles (p50/p99) from the server's metrics object are recorded
per workload, giving the latency/throughput trade-off table the README
quotes.
"""

import asyncio
import os
import time

import common

from repro.analysis import format_table
from repro.compiler import compile_nsc
from repro.compiler.difftest import _collatz_steps, _filter_lt, _map_affine
from repro.nsc import lib
from repro.serving import Server, ShardExecutor


def _workloads():
    r = common.rng(11)
    return [
        (
            "map_affine",
            _map_affine(),
            [[r.randrange(997) for _ in range(12)] for _ in range(512)],
        ),
        (
            "filter_lt",
            _filter_lt(499),
            [[r.randrange(997) for _ in range(12)] for _ in range(512)],
        ),
        (
            "reduce_add",
            lib.reduce_add(),
            [[r.randrange(1000) for _ in range(16)] for _ in range(128)],
        ),
        (
            "collatz",
            _collatz_steps(),
            [[r.randrange(1, 512) for _ in range(8)] for _ in range(128)],
        ),
    ]


def _serve(prog, requests, max_batch, max_delay_ms):
    """Open-loop burst: submit everything, await everything; (results, wall, metrics)."""

    async def main():
        async with Server(
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            max_queue=2 * len(requests),
        ) as srv:
            t0 = time.perf_counter()
            results = await asyncio.gather(*(srv.submit(prog, v) for v in requests))
            wall = time.perf_counter() - t0
        return results, wall, srv.metrics

    return asyncio.run(main())


def test_e11_microbatching_vs_per_request(benchmark):
    rows = []
    speedups = {}
    for name, fn, requests in _workloads():
        prog = compile_nsc(fn)
        prog.run(requests[0])  # warm the fused plan
        prog.run_batch(requests[:2])  # warm the batched twin
        expected = [prog.run(v)[0] for v in requests]

        single, wall_1, m1 = _serve(prog, requests, max_batch=1, max_delay_ms=0.0)
        assert single == expected, f"{name}: per-request serving diverges"
        batched, wall_64, m64 = _serve(prog, requests, max_batch=64, max_delay_ms=2.0)
        assert batched == expected, f"{name}: micro-batched serving diverges"

        rps_1 = len(requests) / wall_1
        rps_64 = len(requests) / wall_64
        speedups[name] = rps_64 / rps_1
        common.record(
            f"e11/microbatch/{name}",
            wall_s=wall_64,
            per_request_wall_s=wall_1,
            requests_per_s=round(rps_64),
            per_request_requests_per_s=round(rps_1),
            mean_batch=round(m64.mean_batch_size, 1),
            p50_ms=round(1e3 * (m64.p50_latency_s or 0), 3),
            p99_ms=round(1e3 * (m64.p99_latency_s or 0), 3),
            opt_level=prog.opt_level,
        )
        rows.append(
            [
                name,
                len(requests),
                f"{rps_1:,.0f}",
                f"{rps_64:,.0f}",
                f"{rps_64 / rps_1:.1f}x",
                f"{m64.mean_batch_size:.0f}",
                f"{1e3 * (m64.p50_latency_s or 0):.1f}",
                f"{1e3 * (m64.p99_latency_s or 0):.1f}",
            ]
        )
    print("\nE11  async serving: per-request dispatch vs adaptive micro-batching")
    print(
        format_table(
            ["workload", "reqs", "1-by-1 req/s", "batched req/s", "speedup",
             "mean batch", "p50 ms", "p99 ms"],
            rows,
        )
    )
    fast = [n for n, s in speedups.items() if s >= 5.0]
    assert len(fast) >= 2, (
        f"expected >=5x requests/sec from micro-batching on >=2 workloads, "
        f"got {speedups}"
    )
    prog = compile_nsc(_map_affine())
    reqs = _workloads()[0][2][:64]
    benchmark(lambda: _serve(prog, reqs, 64, 2.0))


def test_e11_shard_scaling_at_512(benchmark):
    cores = os.cpu_count() or 1
    n_workers = min(cores, 8)
    r = common.rng(12)
    shard_workloads = [
        (
            "collatz",
            _collatz_steps(),
            [[r.randrange(1, 100_000) for _ in range(8)] for _ in range(512)],
        ),
        (
            "reduce_add",
            lib.reduce_add(),
            [[r.randrange(1000) for _ in range(64)] for _ in range(512)],
        ),
    ]
    rows = []
    speedups = {}
    executor = ShardExecutor(n_workers=n_workers)
    try:
        for name, fn, batch in shard_workloads:
            prog = compile_nsc(fn)
            prog.run_batch(batch[:2])  # warm twin + plans
            executor.run_batch(prog, batch[:2])  # warm the workers
            t_single, single = common.wall(
                lambda prog=prog, batch=batch: prog.run_batch(batch), repeat=2
            )
            t_shard, sharded = common.wall(
                lambda prog=prog, batch=batch: executor.run_batch(
                    prog, batch, shards=n_workers
                ),
                repeat=2,
            )
            assert sharded == single, f"{name}: sharded values diverge"
            speedups[name] = t_single / t_shard
            common.record(
                f"e11/shard/{name}/batch512",
                wall_s=t_shard,
                single_wall_s=t_single,
                workers=n_workers,
                cores=cores,
                opt_level=prog.opt_level,
            )
            rows.append(
                [name, len(batch), n_workers, f"{t_single:.3f}s",
                 f"{t_shard:.3f}s", f"{t_single / t_shard:.2f}x"]
            )
    finally:
        executor.close()
    print(f"\nE11b sharded run_batch at batch 512 ({cores} cores, {n_workers} workers)")
    print(
        format_table(
            ["workload", "batch", "workers", "single", "sharded", "speedup"], rows
        )
    )
    if cores >= 4:
        best = max(speedups.values())
        assert best >= 1.8, (
            f"expected >=1.8x from sharding on a >=4-core runner, got {speedups}"
        )
    else:
        print(
            f"(shard gate skipped: {cores} core(s) < 4 — IPC overhead with "
            f"no parallelism to pay for it)"
        )
    prog = compile_nsc(lib.reduce_add())
    small = shard_workloads[1][2][:64]
    with ShardExecutor(n_workers=2) as ex:
        ex.run_batch(prog, small)
        benchmark(lambda: ex.run_batch(prog, small))
