"""E12 — the distributed serving tier: zero-copy transport + router.

Two claims above E11:

* **the transport no longer eats the multi-core win** — E11 measured the
  pickled-S-object wire format costing so much that sharding *lost* to
  single-process serving below 4 cores.  The first experiment re-runs that
  comparison per transport (``pickle`` vs the zero-copy ``shm``/``oob``
  formats of :mod:`repro.serving.transport`) at batch 512 with identical
  results demanded of each.
* **the router scales serving across planes** — an open-loop burst over a
  *mixed* program population is served by the single-process ``Server``
  baseline and by :class:`~repro.serving.Router` topologies of increasing
  worker count (consistent-hash digest routing spreads the programs over
  planes; each plane's shard pool spreads each batch over workers).
  Requests/sec and p50/p99 latency are recorded per topology, and the
  measured speedup is validated against the ``O(T' + W'/p)`` prediction of
  :func:`repro.pram.schedule_outcome` — a Brent bound the measurement must
  not exceed.

Gating mirrors E11: on a **>= 4-core** runner the best routed topology must
beat the single-process server by **>= 1.5x** requests/sec; with fewer
cores the ratio is recorded but not asserted (there is no parallelism to
pay for the remaining IPC).  ``E12_SMOKE=1`` shrinks the load for the CI
smoke leg — same code paths, minutes less wall.
"""

import asyncio
import os
import time

import common

from repro.analysis import format_table
from repro.compiler import compile_nsc
from repro.compiler.difftest import _collatz_steps, _filter_lt, _map_affine
from repro.nsc import lib
from repro.pram import schedule_outcome
from repro.serving import Router, Server, ShardExecutor

SMOKE = bool(int(os.environ.get("E12_SMOKE", "0") or "0"))
BATCH = 128 if SMOKE else 512
CORES = os.cpu_count() or 1


def _population(scale=1):
    """Four distinct programs: enough digests for the ring to spread planes."""
    r = common.rng(12)
    hi = 10_000 if SMOKE else 100_000
    return [
        (
            "collatz",
            _collatz_steps(),
            [[r.randrange(1, hi) for _ in range(8)] for _ in range(BATCH * scale)],
        ),
        (
            "reduce_add",
            lib.reduce_add(),
            [[r.randrange(1000) for _ in range(64)] for _ in range(BATCH * scale)],
        ),
        (
            "map_affine",
            _map_affine(),
            [[r.randrange(997) for _ in range(24)] for _ in range(BATCH * scale)],
        ),
        (
            "filter_lt",
            _filter_lt(499),
            [[r.randrange(997) for _ in range(24)] for _ in range(BATCH * scale)],
        ),
    ]


def test_e12_transport_comparison(benchmark):
    """Same batch, same workers, three wire formats: values must agree,
    and the zero-copy formats retire the per-span re-encode the pickle
    format pays."""
    name, fn, batch = _population()[0]  # collatz: the compute-heavy one
    prog = compile_nsc(fn)
    prog.run_batch(batch[:2])
    n_workers = min(CORES, 4) if CORES > 1 else 2
    walls = {}
    expected = None
    rows = []
    for transport in ("pickle", "oob", "shm"):
        ex = ShardExecutor(n_workers=n_workers, transport=transport)
        try:
            if ex.transport != transport:  # no shm on this platform: skip row
                continue
            ex.run_batch(prog, batch[:2])  # warm workers
            wall, out = common.wall(
                lambda: ex.run_batch(prog, batch, shards=n_workers), repeat=2
            )
            snap = ex.metrics_snapshot()
        finally:
            ex.close()
        assert ex.leaked_segments == [], f"{transport}: segments leaked on close"
        if expected is None:
            expected = out
        else:
            assert out == expected, f"{transport}: transport changes results"
        walls[transport] = wall
        common.record(
            f"e12/transport/{transport}",
            wall_s=wall,
            batch=len(batch),
            workers=n_workers,
            bytes_shipped=snap["segments"]["bytes_shipped"],
            opt_level=prog.opt_level,
        )
        rows.append(
            [transport, len(batch), n_workers, f"{wall:.3f}s",
             f"{snap['segments']['bytes_shipped']:,}"]
        )
    print(f"\nE12a shard transports at batch {len(batch)} ({CORES} cores)")
    print(format_table(["transport", "batch", "workers", "wall", "shm bytes"], rows))
    if "shm" in walls:
        ratio = walls["pickle"] / walls["shm"]
        print(f"    zero-copy shm vs pickle: {ratio:.2f}x")
    small = batch[:32]
    with ShardExecutor(n_workers=2) as ex:
        ex.run_batch(prog, small)
        benchmark(lambda: ex.run_batch(prog, small))


def _serve_single(population, requests):
    async def main():
        async with Server(max_batch=64, max_queue=4 * len(requests)) as srv:
            t0 = time.perf_counter()
            results = await asyncio.gather(
                *(srv.submit(prog, v) for prog, v in requests)
            )
            wall = time.perf_counter() - t0
            lat = srv.metrics
            return results, wall, lat.p50_latency_s, lat.p99_latency_s

    return asyncio.run(main())


def _serve_routed(population, requests, planes, workers_per_plane):
    async def main():
        r = Router(
            planes=planes,
            workers_per_plane=workers_per_plane,
            max_batch=64,
            max_queue=4 * len(requests),
        )
        try:
            # warm each program's home plane (twin + worker blob ship) so the
            # measured window starts from the steady state, like the baseline
            for _, prog, reqs in population:
                r.run_batch(prog, reqs[:2])
            t0 = time.perf_counter()
            results = await asyncio.gather(
                *(r.submit(prog, v) for prog, v in requests)
            )
            wall = time.perf_counter() - t0
            agg = [p.server.metrics for p in r._planes]
            pooled = sorted(x for m in agg for x in m._latencies)
            p50 = pooled[len(pooled) // 2] if pooled else None
            p99 = pooled[min(len(pooled) - 1, round(0.99 * (len(pooled) - 1)))] if pooled else None
        finally:
            await r.close()
        assert r.leaked_segments == [], "router leaked shm segments"
        return results, wall, p50, p99

    return asyncio.run(main())


def test_e12_router_throughput(benchmark):
    population = [(name, compile_nsc(fn), reqs) for name, fn, reqs in _population()]
    for _, prog, reqs in population:
        prog.run_batch(reqs[:2])  # warm twins and plans in-parent

    # interleave the four programs round-robin: the open-loop mixed load
    requests = []
    for i in range(BATCH):
        for _, prog, reqs in population:
            requests.append((prog, reqs[i]))

    expected = []
    for i in range(BATCH):
        for _, prog, reqs in population:
            expected.append(prog.run(reqs[i])[0])

    results, wall_1, p50_1, p99_1 = _serve_single(population, requests)
    assert results == expected, "single-process serving diverges"
    rps_single = len(requests) / wall_1
    rows = [
        ["server (1 proc)", "-", f"{rps_single:,.0f}",
         f"{1e3 * (p50_1 or 0):.1f}", f"{1e3 * (p99_1 or 0):.1f}", "1.00x", "-"]
    ]
    common.record(
        "e12/router/single",
        wall_s=wall_1,
        requests=len(requests),
        requests_per_s=round(rps_single),
        p50_ms=round(1e3 * (p50_1 or 0), 3),
        p99_ms=round(1e3 * (p99_1 or 0), 3),
    )

    # the Brent prediction: per-request T' ~ the per-step depth, total work
    # W' summed over the population; p worker processes bound the speedup
    t_depth, t_work = 0, 0
    for _, prog, reqs in population:
        _, res = prog.run(reqs[0])
        t_depth = max(t_depth, res.time)
        t_work += res.work * BATCH
    base_cycles = schedule_outcome(t_depth, t_work, 1).cycles

    topologies = [(1, 1), (2, 1)]
    if CORES >= 4:
        topologies.append((2, 2))
    best_ratio = 0.0
    for planes, wpp in topologies:
        total_workers = planes * wpp
        results, wall_r, p50_r, p99_r = _serve_routed(
            population, requests, planes, wpp
        )
        assert results == expected, f"routed serving diverges ({planes}x{wpp})"
        rps = len(requests) / wall_r
        ratio = rps / rps_single
        best_ratio = max(best_ratio, ratio)
        predicted = base_cycles / schedule_outcome(t_depth, t_work, total_workers).cycles
        common.record(
            f"e12/router/planes{planes}x{wpp}",
            wall_s=wall_r,
            requests=len(requests),
            requests_per_s=round(rps),
            p50_ms=round(1e3 * (p50_r or 0), 3),
            p99_ms=round(1e3 * (p99_r or 0), 3),
            speedup_vs_single=round(ratio, 3),
            brent_predicted=round(predicted, 3),
            cores=CORES,
        )
        rows.append(
            [f"router {planes}x{wpp}", total_workers, f"{rps:,.0f}",
             f"{1e3 * (p50_r or 0):.1f}", f"{1e3 * (p99_r or 0):.1f}",
             f"{ratio:.2f}x", f"{predicted:.2f}x"]
        )
        # Brent is an upper bound: measured parallel speedup cannot beat the
        # schedule's prediction (generous slack for timer noise)
        assert ratio <= predicted * 1.25 + 0.25, (
            f"router {planes}x{wpp}: measured {ratio:.2f}x exceeds the "
            f"Brent-schedule prediction {predicted:.2f}x — the comparison "
            f"is broken (different work on the two sides?)"
        )

    print(
        f"\nE12b routed serving, {len(requests)} mixed requests, batch {BATCH} "
        f"per program ({CORES} cores)"
    )
    print(
        format_table(
            ["topology", "workers", "req/s", "p50 ms", "p99 ms",
             "vs single", "brent bound"],
            rows,
        )
    )
    if CORES >= 4:
        assert best_ratio >= 1.5, (
            f"expected >=1.5x requests/sec from the routed tier on a "
            f">=4-core runner, got {best_ratio:.2f}x"
        )
    else:
        print(
            f"(router gate skipped: {CORES} core(s) < 4 — ratio "
            f"{best_ratio:.2f}x recorded, not asserted)"
        )
    benchmark(lambda: schedule_outcome(t_depth, t_work, 4))
