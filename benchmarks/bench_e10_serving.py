"""E10 — batched serving: requests/sec with the batch-segment context.

The serving scenario the ROADMAP aims at: many independent small requests
against one compiled program.  Two claims become measurable:

* **batching is one more segment level** — ``run_batch`` packs B requests
  into a single flattened machine run (``compile_nsc(batch_axis=True)``),
  so the per-instruction dispatch, marshalling and machine-setup overhead
  that dominates small inputs is amortised over the whole batch.  The
  acceptance bar: **>= 5x requests/sec at batch 64** versus a loop of
  single-input ``run()`` calls on at least two workloads, with batched
  output values exactly equal to the per-input runs;
* **batched cost is max, not sum** — loops synchronise across the batch, so
  the batched ``T'`` tracks the *slowest* request (plus stage overhead)
  rather than the sum of all requests' times, while ``W'`` scales with the
  total data.  Both counters are deterministic and feed the perf-regression
  gate.

Workloads: per-request inputs are deliberately tiny (8-16 naturals) — the
regime where Python dispatch dominates the NumPy kernels and a production
server would batch.
"""

import common

from repro.analysis import format_table
from repro.bvram import BVRAM
from repro.compiler import compile_nsc
from repro.compiler.batch import batched_program
from repro.compiler.difftest import _collatz_steps, _filter_lt, _map_affine
from repro.nsc import from_python, lib

BATCH_SIZES = (1, 8, 64, 512)


def _workloads():
    r = common.rng(10)
    return [
        ("map_affine", _map_affine(), [[r.randrange(997) for _ in range(12)] for _ in range(512)]),
        ("filter_lt", _filter_lt(499), [[r.randrange(997) for _ in range(12)] for _ in range(512)]),
        ("reduce_add", lib.reduce_add(), [[r.randrange(1000) for _ in range(16)] for _ in range(512)]),
        ("collatz", _collatz_steps(), [[r.randrange(1, 512) for _ in range(8)] for _ in range(512)]),
    ]


def test_e10_serving_throughput(benchmark):
    rows = []
    speedups_at_64 = {}
    for name, fn, requests in _workloads():
        prog = compile_nsc(fn)
        prog.run(requests[0])  # warm the fused plan
        prog.run_batch(requests[:2])  # warm the batched twin
        for bsz in BATCH_SIZES:
            batch = requests[:bsz]
            # identical best-of-N on BOTH sides (no bias toward either mode);
            # fewer repeats at scale only to bound the looped side's wall time
            repeat = 3 if bsz <= 8 else (2 if bsz == 64 else 1)
            t_loop, looped = common.wall(
                lambda batch=batch: [prog.run(v)[0] for v in batch], repeat=repeat
            )
            t_batch, batched = common.wall(
                lambda batch=batch: prog.run_batch(batch), repeat=repeat
            )
            assert batched == looped, f"{name} at batch {bsz}: values diverge"
            rps_loop = bsz / t_loop
            rps_batch = bsz / t_batch
            if bsz == 64:
                speedups_at_64[name] = rps_batch / rps_loop
            common.record(
                f"e10/serving/{name}/batch{bsz}",
                wall_s=t_batch,
                looped_wall_s=t_loop,
                requests_per_s=round(rps_batch),
                looped_requests_per_s=round(rps_loop),
                backend="fused",
                opt_level=prog.opt_level,
            )
            rows.append(
                [name, bsz, f"{rps_loop:,.0f}", f"{rps_batch:,.0f}",
                 f"{rps_batch / rps_loop:.1f}x"]
            )
    print("\nE10  batched serving: looped run() vs run_batch (requests/sec)")
    print(format_table(["workload", "batch", "loop req/s", "batch req/s", "speedup"], rows))
    fast = [n for n, s in speedups_at_64.items() if s >= 5.0]
    assert len(fast) >= 2, (
        f"expected >=5x requests/sec at batch 64 on >=2 workloads, got {speedups_at_64}"
    )
    prog = compile_nsc(_map_affine())
    batch = _workloads()[0][2][:64]
    prog.run_batch(batch)
    benchmark(lambda: prog.run_batch(batch))


def test_e10_batched_cost_is_max_not_sum(benchmark):
    """Batched T' tracks the slowest request, not the sum of all requests.

    Loops synchronise across batch slots (a slot that finishes early rides
    along in the Lemma 7.2 working set), so the batched instruction count
    stays within a small factor of the single-request maximum — while a
    serving loop pays the *sum*.  W' does scale with total data, which the
    deterministic records pin for the regression gate.
    """
    rows = []
    for name, fn, requests in _workloads():
        prog = compile_nsc(fn)
        twin = batched_program(prog)
        batch = requests[:64]
        singles = [prog.run(v)[1] for v in batch]
        t_max = max(r.time for r in singles)
        t_sum = sum(r.time for r in singles)
        machine = BVRAM(twin.n_registers)
        res = machine.run(
            twin,
            twin.encode_batch_input([from_python(v) for v in batch]),
            record_trace=False,
        )
        assert res.time < t_sum / 4, f"{name}: batched T' should beat the summed loop"
        common.record(
            f"e10/costs/{name}/batch64",
            time=res.time,
            work=res.work,
            backend="fused",
            opt_level=2,
        )
        rows.append([name, t_max, t_sum, res.time, res.work])
    print("\nE10b batched T' vs per-request max/sum at batch 64")
    print(format_table(["workload", "max T'", "sum T'", "batch T'", "batch W'"], rows))
    benchmark(lambda: compile_nsc(_map_affine(), batch_axis=True))
