"""E13 — compile cache cold/warm start and SLO scheduler convergence.

Three claims, matching PR 8's acceptance criteria:

* **warm >= 5x cold** — compiling the full differential battery
  (:func:`repro.compiler.difftest.suite`, every program at opt 0 and opt 2)
  through a *populated* on-disk cache in a fresh :class:`CompileCache`
  instance (simulating a new process: empty memo, disk only) is at least
  **5x faster** than the cold compile that populated it;
* **cached == fresh** — a cache-served program is value- and ``T'``/``W'``-
  identical to a freshly compiled one across ``opt 0/2 x fused/vector`` on
  every suite input (the cache can change *when* compiles happen, never
  what runs);
* **the SLO controller converges** — under an open-loop load with a
  deliberately awful initial ``max_delay_ms``, the lane controller tightens
  its knobs until the windowed p99 meets the target (recorded: initial and
  final knobs, tightenings, final p99).
"""

import asyncio
import os
import shutil
import tempfile
import time

import common

from repro.analysis import format_table
from repro.cache import CompileCache
from repro.compiler import compile_nsc
from repro.compiler.difftest import _map_affine, suite
from repro.serving import Server, SLOConfig

OPT_LEVELS = (0, 2)


def _compile_battery(store) -> int:
    n = 0
    for _, fn, _ in suite():
        for opt in OPT_LEVELS:
            compile_nsc(fn, opt_level=opt, cache=store)
            n += 1
    return n


def test_e13_warm_start_5x_faster_than_cold(benchmark):
    cache_dir = tempfile.mkdtemp(prefix="repro-e13-")
    try:
        t0 = time.perf_counter()
        n = _compile_battery(CompileCache(cache_dir))
        cold_s = time.perf_counter() - t0

        # a fresh instance over the same directory = a new process: the
        # memo is empty, every hit is a disk read + checksum + unpickle
        t0 = time.perf_counter()
        warm_store = CompileCache(cache_dir)
        assert _compile_battery(warm_store) == n
        warm_s = time.perf_counter() - t0
        snap = warm_store.snapshot()
        assert snap["misses"] == 0 and snap["hits"] == n, snap

        speedup = cold_s / warm_s
        common.record(
            "e13/cache/warm_start",
            programs=n,
            cold_wall_s=round(cold_s, 4),
            wall_s=round(warm_s, 4),
            speedup=round(speedup, 1),
            disk_bytes=snap["disk_bytes"],
        )
        print(
            f"\nE13  compile cache: {n} programs cold {cold_s * 1e3:.0f}ms, "
            f"warm {warm_s * 1e3:.0f}ms -> {speedup:.1f}x"
        )
        assert speedup >= 5.0, (
            f"warm start must be >=5x faster than cold compile, got "
            f"{speedup:.1f}x ({cold_s:.3f}s vs {warm_s:.3f}s)"
        )
        benchmark(lambda: _compile_battery(CompileCache(cache_dir)))
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def test_e13_cached_identical_to_fresh(benchmark):
    """Value and T'/W' identity across opt 0/2 x fused/vector, all suite inputs."""
    cache_dir = tempfile.mkdtemp(prefix="repro-e13-id-")
    rows = []
    try:
        checked = 0
        for backend in ("fused", "vector"):
            for opt in OPT_LEVELS:
                CompileCache(cache_dir + f"/{backend}{opt}")  # isolate per leg
                leg_dir = cache_dir + f"/{backend}{opt}"
                for name, fn, inputs in suite():
                    fresh = compile_nsc(fn, opt_level=opt, backend=backend, cache=None)
                    compile_nsc(
                        fn, opt_level=opt, backend=backend,
                        cache=CompileCache(leg_dir),
                    )
                    cached = compile_nsc(
                        fn, opt_level=opt, backend=backend,
                        cache=CompileCache(leg_dir),  # fresh instance: disk path
                    )
                    for value in inputs:
                        v_f, r_f = fresh.run(value)
                        v_c, r_c = cached.run(value)
                        assert str(v_c) == str(v_f), (name, opt, backend)
                        assert (r_c.time, r_c.work) == (r_f.time, r_f.work), (
                            name, opt, backend,
                        )
                        checked += 1
                rows.append([backend, opt, checked])
        common.record("e13/cache/identity", runs_checked=checked)
        print("\nE13  cached == fresh (cumulative runs checked)")
        print(format_table(["backend", "opt", "runs ok (cum)"], rows))
        prog_fn = _map_affine()
        benchmark(
            lambda: compile_nsc(prog_fn, cache=CompileCache(cache_dir + "/fused2"))
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def test_e13_slo_convergence(benchmark):
    """The lane controller tightens an awful initial config onto the target."""
    fn = _map_affine()
    n_requests = 200
    target_ms = 60.0

    def run_load():
        async def main():
            slo = SLOConfig(target_p99_ms=target_ms, adjust_every=2, window=64)
            async with Server(
                max_batch=64, max_delay_ms=100.0, slo=slo, cache=None
            ) as srv:
                async def paced(i):
                    await asyncio.sleep(0.002 * i)
                    return await srv.submit(fn, [i % 97, (i * 7) % 97])
                results = await asyncio.gather(
                    *(paced(i) for i in range(n_requests))
                )
                ctrl = next(
                    lane.ctrl for lane in srv._lanes.values()
                    if lane.ctrl is not None
                )
                return results, ctrl.snapshot(), srv.metrics.snapshot()

        return asyncio.run(main())

    results, ctrl_snap, metrics = run_load()
    assert len(results) == n_requests and metrics["failed"] == 0
    final_p99_ms = 1e3 * (ctrl_snap["window_p99_s"] or 0.0)
    common.record(
        "e13/slo/convergence",
        requests=n_requests,
        target_p99_ms=target_ms,
        initial_max_delay_ms=100.0,
        final_max_delay_ms=ctrl_snap["max_delay_ms"],
        final_max_batch=ctrl_snap["max_batch"],
        tightenings=ctrl_snap["tightenings"],
        p99_ms=round(final_p99_ms, 2),
        wall_s=round(0.002 * n_requests, 3),
    )
    print(
        f"\nE13  SLO convergence: max_delay 100ms -> "
        f"{ctrl_snap['max_delay_ms']}ms, max_batch 64 -> "
        f"{ctrl_snap['max_batch']}, final window p99 {final_p99_ms:.1f}ms "
        f"(target {target_ms}ms, {ctrl_snap['tightenings']} tightenings)"
    )
    assert ctrl_snap["tightenings"] >= 1, ctrl_snap
    assert final_p99_ms <= target_ms, ctrl_snap
    if os.environ.get("BENCH_FULL"):
        benchmark(run_load)
    else:
        benchmark(lambda: None)
