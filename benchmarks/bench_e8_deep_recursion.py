"""E8 — stack-safe evaluation: deep workloads impossible on a recursive engine.

Claims: the iterative explicit-stack evaluator runs (a) a 100 000-iteration
``while`` loop and (b) a depth-10 000 map-recursion tree under the *default*
Python recursion limit of 1000, with T growing linearly in the loop count /
tree depth — workloads on which a recursive tree-walking evaluator exhausts
the C stack (the seed needed an import-time ``sys.setrecursionlimit(100_000)``
to survive even shallow versions).  Also records evaluation throughput
(machine steps per second) as the speed baseline for future engine work.

Run:  pytest benchmarks/bench_e8_deep_recursion.py -s
"""

import sys

import common

from repro.algorithms.schemata import countdown
from repro.analysis import format_table
from repro.nsc import apply_function, from_python, to_python
from repro.nsc import builder as B
from repro.nsc import lib
from repro.nsc.types import NAT


def _countdown_while():
    pred = B.lam("x", NAT, B.gt(B.v("x"), 0))
    body = B.lam("x", NAT, B.sub(B.v("x"), 1))
    return B.while_(pred, body)


def _linear_tree_recfun():
    """f(n) = if n <= 1 then n else first(r) + last(r), r = map(f)([1, n-1])."""
    r = B.gensym("r")
    return B.recfun(
        "f",
        "n",
        NAT,
        B.if_(
            B.le(B.v("n"), 1),
            B.v("n"),
            B.let(
                r,
                B.app(
                    B.map_(B.lam("m", NAT, B.reccall("f", B.v("m")))),
                    B.append(B.single(B.c(1)), B.single(B.sub(B.v("n"), 1))),
                ),
                B.add(B.app(lib.first(NAT), B.v(r)), B.app(lib.last(NAT), B.v(r))),
            ),
        ),
        NAT,
    )


def test_e8_deep_while_loops(benchmark):
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(1000)  # the default: no headroom for a recursive engine
    try:
        w = _countdown_while()
        rows = []
        for n in (1_000, 10_000, 100_000):
            dt, out = common.wall(lambda: apply_function(w, from_python(n)), repeat=1)
            assert to_python(out.value) == 0
            rows.append([n, out.time, out.work, round(out.time / dt / 1e6, 2)])
        print("\nE8  while-loop depth scaling (default recursion limit in force)")
        print(format_table(["iterations", "T", "W", "T-steps/s (M)"], rows))
        # T linear in the iteration count
        assert rows[-1][1] > 90 * rows[0][1]
        common.record("e8/while_100k", time=rows[-1][1], work=rows[-1][2])
    finally:
        sys.setrecursionlimit(old_limit)
    benchmark(lambda: apply_function(w, from_python(2_000)))


def test_e8_deep_maprec_trees(benchmark):
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(1000)
    try:
        f = _linear_tree_recfun()
        rows = []
        for depth in (1_000, 5_000, 10_000):
            dt, out = common.wall(lambda: apply_function(f, from_python(depth)), repeat=1)
            assert to_python(out.value) == depth
            rows.append([depth, out.time, out.work, round(dt, 3)])
        print("\nE8  unbalanced map-recursion tree depth scaling")
        print(format_table(["depth", "T", "W", "wall s"], rows))
        assert rows[-1][1] > 9 * rows[0][1]
        common.record("e8/maprec_10k", time=rows[-1][1], work=rows[-1][2], wall_s=rows[-1][3])
    finally:
        sys.setrecursionlimit(old_limit)
    benchmark(lambda: apply_function(f, from_python(500)))


def test_e8_tail_recursion_schema_deep(benchmark):
    """The h-schema countdown runs at depths where the seed engine crashed."""
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(1000)
    try:
        rf = countdown().to_recfun()
        out = apply_function(rf, from_python(5_000))
        assert to_python(out.value) == 0
    finally:
        sys.setrecursionlimit(old_limit)
    benchmark(lambda: apply_function(rf, from_python(300)))
