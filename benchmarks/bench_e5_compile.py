"""E5 — Theorem 7.1 / Proposition 7.5: NSC work maps onto the BVRAM at the
same asymptotic cost, with a fixed register count.

The full compilation chain is exercised at the level the library implements
(see DESIGN.md): the NSC programs define the workload (T, W per Def. 3.1),
and the corresponding flat BVRAM kernels (reduction, filter, broadcast)
reproduce the same work growth on a machine with a *fixed* number of
registers and no general permutation instruction.
"""

import common

from repro.analysis import format_table, loglog_slope
from repro.bvram import run_program
from repro.bvram.programs import filter_leq_program, pairwise_sum_program
from repro.nsc import apply_function, from_python
from repro.nsc import builder as B
from repro.nsc import lib
from repro.nsc.types import NAT


def test_e5_reduction_nsc_vs_bvram(benchmark):
    sizes = [16, 64, 256, 1024]
    rows = []
    for n in sizes:
        xs = list(range(n))
        nsc = apply_function(lib.reduce_add(), from_python(xs))
        bv = run_program(pairwise_sum_program(), [xs])
        rows.append([n, nsc.time, nsc.work, bv.time, bv.work, 8])
    print("\nE5  logarithmic reduction: NSC (Def 3.1 costs) vs compiled BVRAM kernel")
    print(format_table(["n", "T nsc", "W nsc", "T bvram", "W bvram", "registers"], rows))
    common.record("e5/reduction_1024", time=rows[-1][3], work=rows[-1][4])
    # both sides have near-linear work and logarithmic time; register count fixed
    assert 0.8 <= loglog_slope(sizes, [r[2] for r in rows]).slope <= 1.4
    assert 0.8 <= loglog_slope(sizes, [r[4] for r in rows]).slope <= 1.4
    assert loglog_slope(sizes, [r[3] for r in rows]).slope < 0.4
    assert len({r[5] for r in rows}) == 1
    benchmark(lambda: run_program(pairwise_sum_program(), [list(range(256))]))


def test_e5_filter_nsc_vs_bvram(benchmark):
    sizes = [16, 64, 256, 1024]
    pred = B.lam("z", NAT, B.le(B.v("z"), 10))
    rows = []
    for n in sizes:
        xs = [i % 21 for i in range(n)]
        nsc = apply_function(lib.filter_fn(pred, NAT), from_python(xs))
        bv = run_program(filter_leq_program(10), [xs])
        assert bv.output(0) == [x for x in xs if x <= 10]
        rows.append([n, nsc.time, nsc.work, bv.time, bv.work])
    print("\nE5b filter: NSC derived form vs compiled BVRAM kernel")
    print(format_table(["n", "T nsc", "W nsc", "T bvram", "W bvram"], rows))
    # constant parallel time on both sides, linear work on both sides
    assert len({r[1] for r in rows}) == 1
    assert len({r[3] for r in rows}) == 1
    assert 0.9 <= loglog_slope(sizes, [r[2] for r in rows]).slope <= 1.1
    assert 0.9 <= loglog_slope(sizes, [r[4] for r in rows]).slope <= 1.1
    benchmark(lambda: run_program(filter_leq_program(10), [list(range(256))]))
