"""E3 — Theorem 4.2: map-recursion -> NSC translation.

Claims: T' = O(T); W' = O(W) for balanced divide-and-conquer trees; for
unbalanced trees the naive accumulation pays O(v*W) while the staged z_i
buffers pay only O(v^eps * W).
"""

import common

from repro.algorithms.quicksort import quicksort_def
from repro.algorithms.schemata import balanced_sum, skewed_sum
from repro.analysis import format_table
from repro.maprec import naive_accumulation_cost, skewed_level_sizes, staged_accumulation_cost, translate
from repro.nsc import apply_function, from_python


def _ratios(defn, sizes):
    rf, tr = defn.to_recfun(), translate(defn)
    rows = []
    for n in sizes:
        xs = list(range(n))
        a = apply_function(rf, from_python(xs))
        b = apply_function(tr, from_python(xs))
        rows.append([n, a.time, b.time, round(b.time / a.time, 2), a.work, b.work, round(b.work / a.work, 2)])
    return rows


def test_e3_translation_preserves_complexity(benchmark):
    sizes = [8, 16, 32, 64]
    print("\nE3  direct recursion vs Theorem 4.2 translation (balanced_sum)")
    rows_b = _ratios(balanced_sum(), sizes)
    print(format_table(["n", "T rec", "T nsc", "T ratio", "W rec", "W nsc", "W ratio"], rows_b))
    print("\nE3  direct recursion vs Theorem 4.2 translation (skewed_sum, unbalanced)")
    rows_s = _ratios(skewed_sum(), sizes)
    print(format_table(["n", "T rec", "T nsc", "T ratio", "W rec", "W nsc", "W ratio"], rows_s))
    common.record("e3/balanced_sum_64", time=rows_b[-1][2], work=rows_b[-1][5])
    common.record("e3/skewed_sum_64", time=rows_s[-1][2], work=rows_s[-1][5])
    # T' = O(T): ratios bounded and not growing for both shapes
    for rows in (rows_b, rows_s):
        t_ratios = [r[3] for r in rows]
        assert t_ratios[-1] <= t_ratios[0] * 1.5 and max(t_ratios) < 6
    # W' = O(W) for the balanced tree
    w_ratios = [r[6] for r in rows_b]
    assert w_ratios[-1] <= w_ratios[0] * 1.5 and max(w_ratios) < 8
    d = balanced_sum()
    benchmark(lambda: apply_function(translate(d), from_python(list(range(16)))))


def test_e3_staged_buffers_ablation(benchmark):
    print("\nE3b naive vs staged z_i accumulation on a maximally unbalanced tree")
    rows = []
    for leaves in (64, 128, 256, 512):
        sizes = skewed_level_sizes(leaves)
        naive = naive_accumulation_cost(sizes)
        row = [leaves, round(naive.overhead_factor, 1)]
        for eps in (0.5, 0.25):
            row.append(round(staged_accumulation_cost(sizes, eps).overhead_factor, 1))
        rows.append(row)
    print(format_table(["leaves (=v)", "naive factor", "staged eps=0.5", "staged eps=0.25"], rows))
    # naive factor grows with v, staged factors stay far below it
    naive_factors = [r[1] for r in rows]
    assert naive_factors[-1] > 2 * naive_factors[0]
    for r in rows:
        assert r[2] < r[1] and r[3] < r[1]
    benchmark(lambda: staged_accumulation_cost(skewed_level_sizes(256), 0.5))
