"""E9 — the NSC->BVRAM compiler: interpreted vs compiled, naive vs optimized.

The compiler (:mod:`repro.compiler`) realises Theorem 7.1 as executable
machine code, so three claims become measurable on real workloads:

* **throughput** — compiled programs execute NumPy-vector instructions, one
  per *parallel* step, instead of the interpreter's per-element Python rules;
  on vector-heavy workloads the compiled program must win wall-clock;
* **the optimizing pipeline pays** — ``opt_level=2`` plus the machine's
  untraced fast path must be materially faster than the PR 2 baseline
  (``opt_level=0``, traced execution) *measured in the same process*, with
  ``T'``/``W'`` never growing and values staying exact;
* **cost faithfulness** — the machine's measured ``(T', W')`` stay within
  the ``T' = O(T)``, ``W' = O(W^(1+eps))`` envelope as the input grows, and
  Brent-scheduling the compiled instruction trace (Proposition 3.2) shows
  the ``O(T + W/p)`` processor scaling.

Workloads: a scalar arithmetic ``map`` (embarrassingly vectorisable), the
filter idiom (``case`` under ``map``), ``map(while)`` with a skewed iteration
profile (the Lemma 7.2 staged scheme), a logarithmic reduction on 50k
elements, and the Theorem 4.2-translated quicksort and g-schema mergesort
(deep nesting — long programs where per-instruction interpreter overhead
dominates).
"""

import common

from repro.analysis import format_table, loglog_slope
from repro.compiler import compile_nsc
from repro.compiler.difftest import (
    _collatz_steps,
    _filter_lt,
    _map_affine,
    run_differential,
)
from repro.nsc import apply_function, from_python, lib
from repro.obs import profile_section
from repro.pram import schedule_trace


def _workloads():
    from repro.algorithms.mergesort import mergesort_def
    from repro.algorithms.quicksort import quicksort_def
    from repro.maprec.translate import translate

    return [
        ("map_affine", _map_affine(), [i % 997 for i in range(20_000)], False),
        ("filter", _filter_lt(499), [i % 997 for i in range(20_000)], False),
        ("map_while_skew", _collatz_steps(), [i % 511 for i in range(4_096)], True),
        ("reduce_add", lib.reduce_add(), list(range(50_000)), True),
        ("quicksort_t", translate(quicksort_def()), [(i * 37) % 64 for i in range(64)], True),
        ("mergesort_t", translate(mergesort_def()), [(i * 37) % 128 for i in range(128)], True),
    ]


def test_e9_interpreted_vs_compiled_throughput(benchmark):
    rows = []
    speedups = {}
    by_name = {w[0]: w for w in _workloads()}
    picks = ["map_affine", "filter", "map_while_skew", "quicksort_t"]
    for name, fn, arg, _ in (by_name[p] for p in picks):
        value = from_python(arg)
        t_i, interp = common.wall(lambda: apply_function(fn, value))
        prog = compile_nsc(fn, eps=0.5)
        t_c, (result, run) = common.wall(lambda: prog.run(value))
        assert result == interp.value, name
        speedups[name] = t_i / t_c
        extra = {}
        if name == "quicksort_t":
            # one per-block attribution section rides the bench record, so
            # hot-block drift across PRs is diffable from BENCH_*.json alone
            extra["profile"] = profile_section(prog, value)
        common.record(
            f"e9/interp_vs_compiled/{name}",
            wall_s=t_c,
            interp_wall_s=t_i,
            time=run.time,
            work=run.work,
            opt_level=prog.opt_level,
            **extra,
        )
        rows.append(
            [
                name,
                f"{t_i * 1e3:.1f}",
                f"{t_c * 1e3:.1f}",
                f"{t_i / t_c:.1f}x",
                interp.time,
                run.time,
                interp.work,
                run.work,
            ]
        )
    print("\nE9  interpreted vs compiled (wall-clock ms, Def 3.1 vs machine T/W)")
    print(
        format_table(
            ["workload", "interp ms", "compiled ms", "speedup", "T", "T'", "W", "W'"],
            rows,
        )
    )
    # the vector-heavy workloads must beat the tree-walking interpreter
    assert speedups["map_affine"] > 1.0
    benchmark(lambda: compile_nsc(_map_affine(), eps=0.5))


def test_e9_optimized_vs_naive_baseline(benchmark):
    """opt_level 2 + untraced fast path vs the PR 2 baseline (opt 0, traced).

    The acceptance bar: >= 1.5x wall-clock on at least 3 vector-heavy
    workloads, exact value agreement, and T'/W' that never grow (the
    optimizing pipeline is a refinement in the cost model).
    """
    rows = []
    ratios = {}
    for name, fn, arg, vector_heavy in _workloads():
        value = from_python(arg)
        base = compile_nsc(fn, eps=0.5, opt_level=0)
        opt = compile_nsc(fn, eps=0.5, opt_level=2)
        v0, r0 = base.run(value, trace=True)  # PR 2 behaviour: traced, naive
        v2, r2 = opt.run(value)  # the fast path: untraced, optimized
        assert v0 == v2, f"{name}: optimized value diverges"
        assert r2.time <= r0.time, f"{name}: optimization grew T'"
        assert r2.work <= r0.work, f"{name}: optimization grew W'"
        t0, _ = common.wall(lambda: base.run(value, trace=True))
        t2, _ = common.wall(lambda: opt.run(value))
        if vector_heavy:
            ratios[name] = t0 / t2
        common.record(
            f"e9/opt2_vs_naive/{name}",
            wall_s=t2,
            baseline_wall_s=t0,
            time=r2.time,
            work=r2.work,
            baseline_time=r0.time,
            baseline_work=r0.work,
            opt_level=2,
        )
        rows.append(
            [
                name,
                len(base),
                len(opt),
                base.n_registers,
                opt.n_registers,
                r0.time,
                r2.time,
                r0.work,
                r2.work,
                f"{t0 / t2:.2f}x",
            ]
        )
    print("\nE9b opt_level 0 + traced (PR 2 baseline) vs opt_level 2 + untraced")
    print(
        format_table(
            ["workload", "instrs", "opt", "regs", "opt", "T'", "opt T'", "W'", "opt W'", "wall"],
            rows,
        )
    )
    fast_enough = [n for n, r in ratios.items() if r >= 1.5]
    assert len(fast_enough) >= 3, (
        f"expected >=1.5x on >=3 vector-heavy workloads, got {ratios}"
    )
    value = from_python([i % 511 for i in range(1_024)])
    prog = compile_nsc(_collatz_steps(), eps=0.5)
    benchmark(lambda: prog.run(value))


def test_e9_cost_envelope_scaling(benchmark):
    """T'/T and W'/W^(1+eps) stay bounded as the input grows (Theorem 7.1)."""
    fn = _collatz_steps()
    prog = compile_nsc(fn, eps=0.5)
    sizes = [64, 256, 1024, 4096]
    rows, t_ratio, w_ratio = [], [], []
    for n in sizes:
        arg = [i % 511 for i in range(n)]
        rec = run_differential(f"collatz[{n}]", fn, arg, compiled=prog)
        assert rec.value_matches
        t_ratio.append(rec.bvram_time / rec.interp_time)
        w_ratio.append(rec.bvram_work / rec.interp_work**1.5)
        rows.append(
            [n, rec.interp_time, rec.bvram_time, f"{t_ratio[-1]:.2f}",
             rec.interp_work, rec.bvram_work, f"{w_ratio[-1]:.4f}"]
        )
    common.record(
        "e9/envelope/collatz_4096",
        time=rows[-1][2],
        work=rows[-1][5],
        opt_level=prog.opt_level,
    )
    print("\nE9c cost envelope: map(while) at eps = 0.5")
    print(format_table(["n", "T", "T'", "T'/T", "W", "W'", "W'/W^1.5"], rows))
    # T'/T bounded (no growth with n); W' under the W^(1+eps) envelope
    assert max(t_ratio) <= 3 * min(t_ratio) + 1
    assert all(r <= 1.0 for r in w_ratio)
    # W' itself grows near-linearly in n here (iterations are bounded by 511)
    ws = [int(r[5]) for r in rows]
    assert loglog_slope(sizes, ws).slope <= 1.35
    benchmark(lambda: prog.run([i % 511 for i in range(256)]))


def test_e9_brent_schedule_of_compiled_trace(benchmark):
    """Proposition 3.2 applied to a *compiled* trace: cycles ~ O(T' + W'/p).

    This is the consumer the traced mode is kept for: ``trace=True`` returns
    the per-instruction trace (with T/W totals bit-identical to the fast
    path, which the optimizer tests pin).
    """
    fn = _map_affine()
    prog = compile_nsc(fn, eps=0.5)
    _, run = prog.run([i % 997 for i in range(8_192)], trace=True)
    assert run.trace, "traced mode must record the instruction trace"
    rows = []
    cycles = []
    for p in (1, 4, 16, 64, 256, 1024):
        sched = schedule_trace(run.trace, p)
        cycles.append(sched.cycles)
        rows.append([p, sched.cycles, f"{sched.speedup_bound:.1f}"])
    print("\nE9d Brent-scheduled compiled trace (T'={}, W'={})".format(run.time, run.work))
    print(format_table(["p", "cycles", "W'/cycles"], rows))
    # monotone non-increasing cycles, flattening at T' (the O(T + W/p) shape)
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))
    assert cycles[-1] >= run.time
    assert cycles[0] >= run.work  # p = 1 pays the full work
    benchmark(lambda: schedule_trace(run.trace, 64))
