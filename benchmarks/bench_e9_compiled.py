"""E9 — the NSC->BVRAM compiler: interpreted vs compiled execution.

The compiler (:mod:`repro.compiler`) realises Theorem 7.1 as executable
machine code, so two claims become measurable on real workloads:

* **throughput** — compiled programs execute NumPy-vector instructions, one
  per *parallel* step, instead of the interpreter's per-element Python rules;
  on vector-heavy workloads the compiled program must win wall-clock;
* **cost faithfulness** — the machine's measured ``(T', W')`` stay within
  the ``T' = O(T)``, ``W' = O(W^(1+eps))`` envelope as the input grows, and
  Brent-scheduling the compiled instruction trace (Proposition 3.2) shows
  the ``O(T + W/p)`` processor scaling.

Workloads: a scalar arithmetic ``map`` (embarrassingly vectorisable), the
filter idiom (``case`` under ``map``), ``map(while)`` with a skewed iteration
profile (the Lemma 7.2 staged scheme), and the Theorem 4.2-translated
quicksort (deep nesting; the interpreter is expected to stay competitive
there — the table reports it either way).
"""

import time

from repro.analysis import format_table, loglog_slope
from repro.compiler import compile_nsc
from repro.compiler.difftest import (
    _collatz_steps,
    _filter_lt,
    _map_affine,
    run_differential,
)
from repro.nsc import apply_function, from_python
from repro.pram import schedule_trace


def _wall(fn, *args, repeat=3):
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        out = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best, out


def _workloads():
    from repro.algorithms.quicksort import quicksort_def
    from repro.maprec.translate import translate

    return [
        ("map_affine", _map_affine(), [i % 997 for i in range(20_000)]),
        ("filter", _filter_lt(499), [i % 997 for i in range(20_000)]),
        ("map_while_skew", _collatz_steps(), [i % 511 for i in range(4_096)]),
        ("quicksort_t", translate(quicksort_def()), [(i * 37) % 64 for i in range(64)]),
    ]


def test_e9_interpreted_vs_compiled_throughput(benchmark):
    rows = []
    speedups = {}
    for name, fn, arg in _workloads():
        value = from_python(arg)
        t_i, interp = _wall(lambda: apply_function(fn, value))
        prog = compile_nsc(fn, eps=0.5)
        t_c, (result, run) = _wall(lambda: prog.run(value))
        assert result == interp.value, name
        speedups[name] = t_i / t_c
        rows.append(
            [
                name,
                f"{t_i * 1e3:.1f}",
                f"{t_c * 1e3:.1f}",
                f"{t_i / t_c:.1f}x",
                interp.time,
                run.time,
                interp.work,
                run.work,
            ]
        )
    print("\nE9  interpreted vs compiled (wall-clock ms, Def 3.1 vs machine T/W)")
    print(
        format_table(
            ["workload", "interp ms", "compiled ms", "speedup", "T", "T'", "W", "W'"],
            rows,
        )
    )
    # the vector-heavy workloads must beat the tree-walking interpreter
    assert speedups["map_affine"] > 1.0
    benchmark(lambda: compile_nsc(_map_affine(), eps=0.5))


def test_e9_cost_envelope_scaling(benchmark):
    """T'/T and W'/W^(1+eps) stay bounded as the input grows (Theorem 7.1)."""
    fn = _collatz_steps()
    prog = compile_nsc(fn, eps=0.5)
    sizes = [64, 256, 1024, 4096]
    rows, t_ratio, w_ratio = [], [], []
    for n in sizes:
        arg = [i % 511 for i in range(n)]
        rec = run_differential(f"collatz[{n}]", fn, arg, compiled=prog)
        assert rec.value_matches
        t_ratio.append(rec.bvram_time / rec.interp_time)
        w_ratio.append(rec.bvram_work / rec.interp_work**1.5)
        rows.append(
            [n, rec.interp_time, rec.bvram_time, f"{t_ratio[-1]:.2f}",
             rec.interp_work, rec.bvram_work, f"{w_ratio[-1]:.4f}"]
        )
    print("\nE9b cost envelope: map(while) at eps = 0.5")
    print(format_table(["n", "T", "T'", "T'/T", "W", "W'", "W'/W^1.5"], rows))
    # T'/T bounded (no growth with n); W' under the W^(1+eps) envelope
    assert max(t_ratio) <= 3 * min(t_ratio) + 1
    assert all(r <= 1.0 for r in w_ratio)
    # W' itself grows near-linearly in n here (iterations are bounded by 511)
    ws = [int(r[5]) for r in rows]
    assert loglog_slope(sizes, ws).slope <= 1.35
    benchmark(lambda: prog.run([i % 511 for i in range(256)]))


def test_e9_brent_schedule_of_compiled_trace(benchmark):
    """Proposition 3.2 applied to a *compiled* trace: cycles ~ O(T' + W'/p)."""
    fn = _map_affine()
    prog = compile_nsc(fn, eps=0.5)
    _, run = prog.run([i % 997 for i in range(8_192)])
    rows = []
    cycles = []
    for p in (1, 4, 16, 64, 256, 1024):
        sched = schedule_trace(run.trace, p)
        cycles.append(sched.cycles)
        rows.append([p, sched.cycles, f"{sched.speedup_bound:.1f}"])
    print("\nE9c Brent-scheduled compiled trace (T'={}, W'={})".format(run.time, run.work))
    print(format_table(["p", "cycles", "W'/cycles"], rows))
    # monotone non-increasing cycles, flattening at T' (the O(T + W/p) shape)
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))
    assert cycles[-1] >= run.time
    assert cycles[0] >= run.work  # p = 1 pays the full work
    benchmark(lambda: schedule_trace(run.trace, 64))
