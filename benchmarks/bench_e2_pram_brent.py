"""E2 — Proposition 3.2: NSC runs on a CREW PRAM (+scans) in O(T + W/p).

Claim: cycles fall as ~W/p until p approaches W/T, then flatten at ~T.
"""

import common

from repro.algorithms.mergesort import run_mergesort
from repro.analysis import format_table
from repro.bvram import run_program
from repro.bvram.programs import pairwise_sum_program
from repro.pram import brent_bound, schedule_outcome, schedule_trace


def test_e2_brent_scheduling_nsc(benchmark):
    wall_s, outcome = common.wall(lambda: run_mergesort(list(range(64, 0, -1))))
    common.record("e2/mergesort_64", wall_s=wall_s, time=outcome.time, work=outcome.work)
    procs = [1, 2, 4, 8, 16, 32, 64, 128, 256, 1024]
    rows = []
    for p in procs:
        sched = schedule_outcome(outcome.time, outcome.work, p)
        rows.append([p, sched.cycles, brent_bound(outcome.time, outcome.work, p)])
    print("\nE2  Brent scheduling of the NSC mergesort evaluation (Prop 3.2)")
    print(f"    T = {outcome.time}, W = {outcome.work}")
    print(format_table(["p", "cycles", "T + W/p bound"], rows))
    cycles = [r[1] for r in rows]
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))          # monotone in p
    assert cycles[0] >= outcome.work                                 # p=1 pays the work
    assert cycles[-1] <= 6 * outcome.time                            # saturates near T
    for p, c, bound in rows:
        assert c <= 4 * bound                                        # within O(T + W/p)
    benchmark(lambda: schedule_outcome(outcome.time, outcome.work, 64))


def test_e2_brent_scheduling_bvram_trace(benchmark):
    result = run_program(pairwise_sum_program(), [list(range(256))])
    procs = [1, 4, 16, 64, 256]
    rows = [[p, schedule_trace(result.trace, p).cycles] for p in procs]
    print("\nE2b Brent scheduling of a BVRAM instruction trace")
    print(format_table(["p", "cycles"], rows))
    assert rows[0][1] > rows[-1][1]
    assert rows[-1][1] >= result.time
    benchmark(lambda: schedule_trace(result.trace, 16))
