"""Shared harness for the ``bench_e*.py`` experiments.

Every experiment file used to hand-roll the same three pieces of
boilerplate; they live here once:

* **deterministic seeding** — :func:`rng` returns an isolated
  ``random.Random`` so experiments never depend on (or disturb) the global
  RNG state, and re-runs reproduce the published tables bit for bit;
* **wall-clock timing** — :func:`wall` is best-of-N ``perf_counter``
  timing, the convention used for every speedup claim in EXPERIMENTS.md;
* **machine-readable results** — :func:`record` collects one JSON-able dict
  per measured quantity.  When the ``BENCH_JSON`` environment variable is
  set (as ``benchmarks/run_all.py`` does), each record is also appended to
  that file as a JSON line; the perf-regression CI gate aggregates them
  into ``BENCH_PR3.json`` and diffs against the committed baseline.

Records should carry the fields the gate understands where they apply:
``time`` / ``work`` (machine or Definition 3.1 counters — deterministic, so
they regress loudly), ``wall_s`` (wall-clock seconds) and ``opt_level``.
"""

from __future__ import annotations

import json
import os
import platform
import random
import time
from functools import lru_cache
from typing import Any, Callable

_RECORDS: list[dict[str, Any]] = []


@lru_cache(maxsize=1)
def host_info() -> dict[str, Any]:
    """The machine facts a wall-clock number is meaningless without.

    Attached to every record so a BENCH_*.json line can be judged in
    context: core count (parallel benches), interpreter version, and
    whether numba was importable (the vector-jit tier silently degrades to
    the plain vector backend without it).
    """
    try:
        import numba  # noqa: F401

        numba_version = getattr(numba, "__version__", "unknown")
    except Exception:
        numba_version = None
    return {
        "cpus": os.cpu_count(),
        "python": platform.python_version(),
        "numba": numba_version,
    }


def rng(seed: int = 0) -> random.Random:
    """A deterministic, isolated random generator for one experiment."""
    return random.Random(seed)


def wall(fn: Callable, *args, repeat: int = 3) -> tuple[float, Any]:
    """Best-of-``repeat`` wall-clock seconds for ``fn(*args)`` plus its result."""
    best = float("inf")
    out = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        out = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best, out


def record(name: str, **fields: Any) -> dict[str, Any]:
    """Emit one machine-readable result record (see module docstring)."""
    rec: dict[str, Any] = {"name": name, **fields}
    rec.setdefault("host", host_info())
    _RECORDS.append(rec)
    path = os.environ.get("BENCH_JSON")
    if path:
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
    return rec


def records() -> list[dict[str, Any]]:
    """All records emitted so far in this process (newest last)."""
    return list(_RECORDS)
