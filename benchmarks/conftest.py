"""Shared helpers for the benchmark harness.

Every experiment file regenerates one of the paper's claims (see DESIGN.md's
experiment index) and prints the reproduced series as a table.  The files are
named ``bench_e*.py`` (not ``test_*.py``), so they must be passed to pytest
explicitly: ``pytest benchmarks/bench_e*.py -s`` reproduces the numbers
recorded in EXPERIMENTS.md (add ``--benchmark-disable`` for a quick smoke
pass, as CI does).
"""
