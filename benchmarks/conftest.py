"""Shared helpers for the benchmark harness.

Every experiment file regenerates one of the paper's claims (see DESIGN.md's
experiment index) and prints the reproduced series as a table, so running
``pytest benchmarks/ --benchmark-only -s`` reproduces the numbers recorded in
EXPERIMENTS.md.
"""
