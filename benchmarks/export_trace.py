#!/usr/bin/env python
"""Export a sample Chrome trace from one E10-style batched serving run.

CI runs this after the perf sweep and uploads the resulting ``trace.json``
as a workflow artifact, so every PR carries one inspectable waterfall of
the full pipeline: the compile stages (``compile/nsa`` -> ``flatten`` ->
``codegen`` -> ``optimize`` with IR sizes in the args) followed by the
batched serving path (``batch/encode`` -> ``execute`` -> ``decode``).

Usage::

    PYTHONPATH=src python benchmarks/export_trace.py --out trace.json

Open the file in ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import argparse

import common

from repro.compiler import compile_nsc
from repro.compiler.difftest import _collatz_steps
from repro.obs import Trace


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--out", default="trace.json")
    ap.add_argument("--batch", type=int, default=64)
    args = ap.parse_args()

    r = common.rng(10)
    requests = [[r.randrange(1, 512) for _ in range(8)] for _ in range(args.batch)]
    with Trace() as tr:
        prog = compile_nsc(_collatz_steps())  # compile stages land in the trace
        results = prog.run_batch(requests)  # batch/encode|execute|decode spans
    assert len(results) == args.batch
    path = tr.export_chrome(args.out)
    print(f"[export_trace] {len(tr)} events -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
